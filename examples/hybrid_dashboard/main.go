// Hybrid dashboard: the paper's motivating scenario (§1) — an analytical
// application serving a regular dashboard report (TPC-H-Q6-style multi-
// column range aggregations) while continuously ingesting new rows. The
// example compares three designs on the same operation stream:
//
//	StateOfArt        sorted column + delta store (the baseline)
//	Casper            workload-trained single table (Fig. 1 at laptop scale)
//	Casper ×8 shards  the sharded engine: batched async ingest, fan-out
//	                  dashboard queries, and background drift-triggered
//	                  retraining that re-lays shards out without blocking
//	                  either path
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"casper"
)

const (
	rows      = 150_000
	domainMax = 1_500_000
	ingestPer = 400 // inserts per batch
	reportPer = 40  // dashboard queries per batch
)

type config struct {
	label   string
	mode    casper.Mode
	shards  int
	auto    bool // background retraining
	batches int  // the sharded run is long enough for drift to trigger
}

func main() {
	keys := casper.UniformKeys(rows, domainMax, 7)

	for _, cfg := range []config{
		{"StateOfArt", casper.ModeStateOfArt, 1, false, 5},
		{"Casper", casper.ModeCasper, 1, false, 5},
		{"Casper x8", casper.ModeCasper, 8, true, 40},
	} {
		eng, err := casper.Open(keys, casper.Options{
			Mode:        cfg.mode,
			PayloadCols: 7,
			ChunkValues: 65_536,
			GhostFrac:   0.01,
			Partitions:  32,
			Shards:      cfg.shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		if cfg.mode == casper.ModeCasper {
			// Train on yesterday's traffic: recent-skewed ingest plus the
			// dashboard's range queries.
			sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, domainMax, 8_000, 3)
			if err != nil {
				log.Fatal(err)
			}
			if err := eng.Train(sample, runtime.NumCPU()); err != nil {
				log.Fatal(err)
			}
		}
		if cfg.auto {
			// Today's traffic will drift; let the background worker chase
			// it with shadow retrains instead of blocking the serving path.
			if err := eng.StartAutoRetrain(casper.RetrainPolicy{
				CheckEvery: 5 * time.Millisecond,
				MinOps:     300,
				MaxDrift:   0.05,
			}); err != nil {
				log.Fatal(err)
			}
		}

		rng := rand.New(rand.NewSource(11))
		var ingestNs, reportNs int64
		start := time.Now()
		for b := 0; b < cfg.batches; b++ {
			// Continuous ingest of recent (high-key) data. The sharded
			// engine takes the batched write path: ops grouped by shard
			// and the groups applied on parallel goroutines. (For fully
			// asynchronous ingest, ApplyBatchAsync returns a handle to
			// Wait on later.)
			t0 := time.Now()
			ingest := make([]casper.Op, ingestPer)
			for i := range ingest {
				ingest[i] = casper.Op{Kind: casper.Insert, Key: domainMax - rng.Int63n(domainMax/10)}
			}
			if cfg.shards > 1 {
				eng.ApplyBatch(ingest)
			} else {
				for _, op := range ingest {
					eng.Insert(op.Key)
				}
			}
			ingestNs += time.Since(t0).Nanoseconds()

			// Dashboard refresh: revenue-style Q6 aggregations.
			t0 = time.Now()
			for i := 0; i < reportPer; i++ {
				lo := rng.Int63n(domainMax * 9 / 10)
				eng.MultiRangeSum(lo, lo+domainMax/50, []casper.Filter{
					{Col: 1, Lo: 0, Hi: 1 << 30},        // discount band
					{Col: 2, Lo: -1 << 30, Hi: 1 << 30}, // quantity band
				}, 3)
			}
			reportNs += time.Since(t0).Nanoseconds()
		}
		total := time.Since(start)
		eng.StopAutoRetrain()
		ops := cfg.batches * (ingestPer + reportPer)
		extra := ""
		if cfg.auto {
			extra = fmt.Sprintf("   %d bg retrains", eng.Retrains())
		}
		fmt.Printf("%-13s ingest %6.1f us/insert   dashboard %8.1f us/query   %7.0f ops/s%s\n",
			cfg.label+":",
			float64(ingestNs)/float64(cfg.batches*ingestPer)/1e3,
			float64(reportNs)/float64(cfg.batches*reportPer)/1e3,
			float64(ops)/total.Seconds(), extra)
	}
	fmt.Println("\nCasper keeps ingest cheap (ghost values in the hot partitions) without")
	fmt.Println("giving up the dashboard's scan performance (fine partitions where queries")
	fmt.Println("land); sharding adds parallel ingest waves and non-blocking re-layout.")
}
