// Hybrid dashboard: the paper's motivating scenario (§1) — an analytical
// application serving a regular dashboard report (TPC-H-Q6-style multi-
// column range aggregations) while continuously ingesting new rows. The
// example compares three designs on the same operation stream:
//
//	StateOfArt        sorted column + delta store (the baseline)
//	Casper            workload-trained single table (Fig. 1 at laptop scale)
//	Casper ×8 shards  the sharded engine: batched async ingest, fan-out
//	                  dashboard queries, and background drift-triggered
//	                  retraining that re-lays shards out without blocking
//	                  either path
//
// The timing panel is driven by the engine's own metrics registry rather
// than stopwatches around the call sites: per-operation throughput comes
// from diffing two Snapshots, tail latency from the sampled power-of-two
// histograms (Quantile returns a bucket upper bound), and the lifecycle
// trail — retrain swaps, rebalance installs — from the event journal.
//
// With -http the sharded engine stays up after the comparison and serves
// the same numbers live on /metrics (JSON and Prometheus) and /events.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"time"

	"casper"
	"casper/internal/obs/httpdebug"
)

const (
	rows      = 150_000
	domainMax = 1_500_000
	ingestPer = 400 // inserts per batch
	reportPer = 40  // dashboard queries per batch
)

type config struct {
	label   string
	mode    casper.Mode
	shards  int
	auto    bool // background retraining
	batches int  // the sharded run is long enough for drift to trigger
}

func main() {
	httpAddr := flag.String("http", "", "after the comparison, serve live /metrics and /events on this address")
	flag.Parse()

	keys := casper.UniformKeys(rows, domainMax, 7)
	var last *casper.Engine

	for _, cfg := range []config{
		{"StateOfArt", casper.ModeStateOfArt, 1, false, 5},
		{"Casper", casper.ModeCasper, 1, false, 5},
		{"Casper x8", casper.ModeCasper, 8, true, 40},
	} {
		eng, err := casper.Open(keys, casper.Options{
			Mode:        cfg.mode,
			PayloadCols: 7,
			ChunkValues: 65_536,
			GhostFrac:   0.01,
			Partitions:  32,
			Shards:      cfg.shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		if cfg.mode == casper.ModeCasper {
			// Train on yesterday's traffic: recent-skewed ingest plus the
			// dashboard's range queries.
			sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, domainMax, 8_000, 3)
			if err != nil {
				log.Fatal(err)
			}
			if err := eng.Train(sample, runtime.NumCPU()); err != nil {
				log.Fatal(err)
			}
		}
		if cfg.auto {
			// Today's traffic will drift; let the background worker chase
			// it with shadow retrains instead of blocking the serving path.
			if err := eng.StartAutoRetrain(casper.RetrainPolicy{
				CheckEvery: 5 * time.Millisecond,
				MinOps:     300,
				MaxDrift:   0.05,
			}); err != nil {
				log.Fatal(err)
			}
		}

		// The engine measures itself: the first Metrics call enables the
		// registry; the pre-loop snapshot is the diff baseline.
		before := eng.Metrics()
		rng := rand.New(rand.NewSource(11))
		start := time.Now()
		for b := 0; b < cfg.batches; b++ {
			// Continuous ingest of recent (high-key) data. The sharded
			// engine takes the batched write path: ops grouped by shard
			// and the groups applied on parallel goroutines. (For fully
			// asynchronous ingest, ApplyBatchAsync returns a handle to
			// Wait on later.)
			ingest := make([]casper.Op, ingestPer)
			for i := range ingest {
				ingest[i] = casper.Op{Kind: casper.Insert, Key: domainMax - rng.Int63n(domainMax/10)}
			}
			if cfg.shards > 1 {
				eng.ApplyBatch(ingest)
			} else {
				for _, op := range ingest {
					eng.Insert(op.Key)
				}
			}

			// Dashboard refresh: revenue-style Q6 aggregations.
			for i := 0; i < reportPer; i++ {
				lo := rng.Int63n(domainMax * 9 / 10)
				eng.MultiRangeSum(lo, lo+domainMax/50, []casper.Filter{
					{Col: 1, Lo: 0, Hi: 1 << 30},        // discount band
					{Col: 2, Lo: -1 << 30, Hi: 1 << 30}, // quantity band
				}, 3)
			}
		}
		elapsed := time.Since(start)
		eng.StopAutoRetrain()
		after := eng.Metrics()

		extra := ""
		if cfg.auto {
			extra = fmt.Sprintf("   %d bg retrains", eng.Retrains())
		}
		fmt.Printf("%s%s\n", cfg.label, extra)
		printOpsPanel(before, after, elapsed)
		if cfg.auto {
			printEvents(eng, 10)
		}
		fmt.Println()
		if cfg.shards > 1 {
			last = eng
		}
	}
	fmt.Println("Casper keeps ingest cheap (ghost values in the hot partitions) without")
	fmt.Println("giving up the dashboard's scan performance (fine partitions where queries")
	fmt.Println("land); sharding adds parallel ingest waves and non-blocking re-layout.")

	if *httpAddr != "" && last != nil {
		fmt.Printf("\nserving live /metrics and /events on %s — Ctrl-C to stop\n", *httpAddr)
		go backgroundLoad(last)
		log.Fatal(http.ListenAndServe(*httpAddr, httpdebug.Handler(last)))
	}
}

// printOpsPanel renders per-operation throughput and tail latency from the
// diff of two metric snapshots: counts are monotonic, so (after − before) /
// elapsed is this run's rate, and the sampled latency histograms give p50
// and p99 as power-of-two bucket upper bounds.
func printOpsPanel(before, after casper.Snapshot, elapsed time.Duration) {
	names := make([]string, 0, len(after.Ops))
	for name := range after.Ops {
		if after.Ops[name].Count > before.Ops[name].Count {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		n := after.Ops[name].Count - before.Ops[name].Count
		lat := after.Ops[name].LatencyNs
		fmt.Printf("  %-12s %8d ops  %9.0f ops/s   p50 %8s   p99 %8s\n",
			name, n, float64(n)/elapsed.Seconds(),
			fmtNs(int64(lat.Quantile(0.50))), fmtNs(int64(lat.Quantile(0.99))))
	}
}

// printEvents prints the newest n journal entries — the lifecycle trail the
// background workers left while the serving path kept running.
func printEvents(eng *casper.Engine, n int) {
	events := eng.Events(0)
	if len(events) > n {
		events = events[len(events)-n:]
	}
	if len(events) == 0 {
		return
	}
	fmt.Printf("  last %d lifecycle events:\n", len(events))
	for _, ev := range events {
		detail := ""
		if ev.Rows > 0 {
			detail += fmt.Sprintf(" rows=%d", ev.Rows)
		}
		if ev.DurNs > 0 {
			detail += fmt.Sprintf(" dur=%s", fmtNs(ev.DurNs))
		}
		if ev.Note != "" {
			detail += " " + ev.Note
		}
		fmt.Printf("    #%-4d %-18s shard=%-2d%s\n", ev.Seq, ev.Kind, ev.Shard, detail)
	}
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// backgroundLoad keeps a light mixed workload running so the live endpoint
// has moving numbers to show.
func backgroundLoad(eng *casper.Engine) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; ; i++ {
		lo := rng.Int63n(domainMax * 9 / 10)
		eng.RangeCount(lo, lo+domainMax/100)
		eng.PointQuery(rng.Int63n(domainMax))
		if i%4 == 0 {
			eng.Insert(domainMax - rng.Int63n(domainMax/10))
		}
		if i%32 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
}
