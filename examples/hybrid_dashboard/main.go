// Hybrid dashboard: the paper's motivating scenario (§1) — an analytical
// application serving a regular dashboard report (TPC-H-Q6-style multi-
// column range aggregations) while continuously ingesting new rows. The
// example compares the state-of-the-art delta design against Casper's
// workload-tailored layout on the same operation stream, reproducing the
// Fig. 1 effect at laptop scale.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"casper"
)

const (
	rows      = 150_000
	domainMax = 1_500_000
	batches   = 5
	ingestPer = 400 // inserts per batch
	reportPer = 40  // dashboard queries per batch
)

func main() {
	keys := casper.UniformKeys(rows, domainMax, 7)

	for _, mode := range []casper.Mode{casper.ModeStateOfArt, casper.ModeCasper} {
		eng, err := casper.Open(keys, casper.Options{
			Mode:        mode,
			PayloadCols: 7,
			ChunkValues: 65_536,
			GhostFrac:   0.01,
			Partitions:  32,
		})
		if err != nil {
			log.Fatal(err)
		}
		if mode == casper.ModeCasper {
			// Train on yesterday's traffic: recent-skewed ingest plus the
			// dashboard's range queries.
			sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, domainMax, 8_000, 3)
			if err != nil {
				log.Fatal(err)
			}
			if err := eng.Train(sample, runtime.NumCPU()); err != nil {
				log.Fatal(err)
			}
		}

		rng := rand.New(rand.NewSource(11))
		var ingestNs, reportNs int64
		start := time.Now()
		for b := 0; b < batches; b++ {
			// Continuous ingest of recent (high-key) data.
			t0 := time.Now()
			for i := 0; i < ingestPer; i++ {
				eng.Insert(domainMax - rng.Int63n(domainMax/10))
			}
			ingestNs += time.Since(t0).Nanoseconds()

			// Dashboard refresh: revenue-style Q6 aggregations.
			t0 = time.Now()
			for i := 0; i < reportPer; i++ {
				lo := rng.Int63n(domainMax * 9 / 10)
				eng.MultiRangeSum(lo, lo+domainMax/50, []casper.Filter{
					{Col: 1, Lo: 0, Hi: 1 << 30},        // discount band
					{Col: 2, Lo: -1 << 30, Hi: 1 << 30}, // quantity band
				}, 3)
			}
			reportNs += time.Since(t0).Nanoseconds()
		}
		total := time.Since(start)
		ops := batches * (ingestPer + reportPer)
		fmt.Printf("%-13s ingest %6.1f us/insert   dashboard %8.1f us/query   %7.0f ops/s\n",
			mode.String()+":",
			float64(ingestNs)/float64(batches*ingestPer)/1e3,
			float64(reportNs)/float64(batches*reportPer)/1e3,
			float64(ops)/total.Seconds())
	}
	fmt.Println("\nCasper keeps ingest cheap (ghost values in the hot partitions) without")
	fmt.Println("giving up the dashboard's scan performance (fine partitions where queries land).")
}
