package casper

// Public follower API: OpenFollower serves the leader's data read-only and
// converges after ingest quiesces.

import (
	"testing"
	"time"
)

func TestOpenFollower(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(ModeCasper)
	opts.Shards = 3
	opts.Dir = dir
	opts.Sync = SyncModeNone
	keys := UniformKeys(2000, 20000, 5)
	leader, err := Open(keys, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer leader.Close()

	f, err := OpenFollower(dir, opts)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()

	for i := int64(0); i < 500; i++ {
		leader.Insert(30000 + i)
	}
	if err := leader.Delete(30000); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !f.WaitCaughtUp(10 * time.Second) {
		t.Fatalf("follower never caught up: err=%v", f.Err())
	}

	if lf, ff := leader.Len(), f.Len(); lf != ff {
		t.Fatalf("Len: leader %d, follower %d", lf, ff)
	}
	if got := f.PointQuery(30001); got != 1 {
		t.Fatalf("PointQuery(30001) = %d; want 1", got)
	}
	if got := f.PointQuery(30000); got != 0 {
		t.Fatalf("PointQuery(30000) = %d; want 0 after delete", got)
	}
	if lc, fc := leader.RangeCount(30000, 30500), f.RangeCount(30000, 30500); lc != fc {
		t.Fatalf("RangeCount: leader %d, follower %d", lc, fc)
	}
	if ls, fs := leader.RangeSum(0, 20000), f.RangeSum(0, 20000); ls != fs {
		t.Fatalf("RangeSum: leader %d, follower %d", ls, fs)
	}

	// A View pins one applied epoch across queries.
	f.View(func(v *View) {
		if v.RangeCount(30001, 30010) != 10 {
			t.Errorf("View.RangeCount = %d; want 10", v.RangeCount(30001, 30010))
		}
	})

	// Scans stream the follower's applied state.
	c := f.Scan(30001, 30005, ScanOptions{})
	n := 0
	for c.Next() {
		n++
	}
	c.Close()
	if n != 5 {
		t.Fatalf("Scan yielded %d rows; want 5", n)
	}

	// Writes are rejected, not silently dropped.
	if err := f.Insert(1); err != ErrReadOnly {
		t.Fatalf("Insert = %v; want ErrReadOnly", err)
	}
	if err := f.Delete(30001); err != ErrReadOnly {
		t.Fatalf("Delete = %v; want ErrReadOnly", err)
	}
	if err := f.UpdateKey(30001, 1); err != ErrReadOnly {
		t.Fatalf("UpdateKey = %v; want ErrReadOnly", err)
	}

	m := f.Metrics()
	if m.Replica.RecordsApplied == 0 {
		t.Fatalf("Replica.RecordsApplied = 0; want > 0")
	}
	if f.Lag() != 0 {
		t.Fatalf("Lag = %v after quiesce; want 0", f.Lag())
	}
}
