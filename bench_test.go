package casper_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, delegating to internal/experiments (the same code the
// casperbench command runs), plus operation-level micro-benchmarks on the
// public API. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report their headline metric via b.ReportMetric so the
// shape is visible in benchmark output (e.g. Casper-vs-state-of-art
// normalized throughput for Fig. 12).

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"casper"
	"casper/internal/experiments"
)

// benchScale sizes experiment benchmarks so a full -bench=. pass stays in
// the minutes range.
func benchScale() experiments.Scale {
	sc := experiments.SmallScale()
	sc.Rows = 50_000
	sc.Ops = 1_500
	sc.TrainOps = 1_500
	sc.ChunkValues = 16_384
	sc.DomainMax = 500_000
	return sc
}

func BenchmarkTable1DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); len(r.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig01VanillaVsDeltaVsCasper(b *testing.B) {
	sc := benchScale()
	var last experiments.Report
	for i := 0; i < b.N; i++ {
		last = experiments.Fig1(sc)
	}
	if n := last.Data["norm"]; len(n) == 3 {
		b.ReportMetric(n[1], "delta-x-vanilla")
		b.ReportMetric(n[2], "casper-x-vanilla")
	}
}

func BenchmarkFig02TradeoffCurves(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig2(sc)
	}
}

func BenchmarkFig09ModelVerification(b *testing.B) {
	sc := benchScale()
	var last experiments.Report
	for i := 0; i < b.N; i++ {
		last = experiments.Fig9(sc)
	}
	if rs := last.Data["a.ratio"]; len(rs) > 0 {
		var s float64
		for _, r := range rs {
			s += r
		}
		b.ReportMetric(s/float64(len(rs)), "mean-model-ratio")
	}
}

func BenchmarkFig11SolverScalability(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig11(sc)
	}
}

func BenchmarkFig12LayoutsAcrossWorkloads(b *testing.B) {
	sc := benchScale()
	var last experiments.Report
	for i := 0; i < b.N; i++ {
		last = experiments.Fig12(sc)
	}
	if v := last.Data["update-only, uniform/Casper"]; len(v) == 1 {
		b.ReportMetric(v[0], "casper-norm-updateonly")
	}
	if v := last.Data["hybrid, skewed/Casper"]; len(v) == 1 {
		b.ReportMetric(v[0], "casper-norm-hybrid")
	}
}

func BenchmarkFig13LatencyBreakdown(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig13(sc)
	}
}

func BenchmarkFig14GhostValueSweep(b *testing.B) {
	sc := benchScale()
	var last experiments.Report
	for i := 0; i < b.N; i++ {
		last = experiments.Fig14(sc)
	}
	if v := last.Data["udi1"]; len(v) >= 2 {
		b.ReportMetric(v[0]/v[len(v)-1], "insert-speedup-at-10pct")
	}
}

func BenchmarkFig15SLASweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig15(sc)
	}
}

func BenchmarkFig16Robustness(b *testing.B) {
	sc := benchScale()
	sc.Ops = 600
	for i := 0; i < b.N; i++ {
		experiments.Fig16(sc)
	}
}

// BenchmarkShardedThroughput measures multi-client ops/sec as the shard
// count grows, on a read-heavy and a write-heavy skewed mix. The headline
// metric is ops/s; scaling 1→8 shards is the tentpole claim (hash
// partitioning spreads the skewed hot range across the fleet, so the hot
// chunk's lock stops being a global serialization point).
func BenchmarkShardedThroughput(b *testing.B) {
	const rows = 200_000
	for _, mix := range experiments.ShardedMixes() {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", mix.Name, shards), func(b *testing.B) {
				e, ops, err := experiments.ShardedScenario(mix.Preset, shards, rows, 100_000, 4, 3)
				if err != nil {
					b.Fatal(err)
				}
				var next atomic.Int64
				b.ResetTimer()
				start := time.Now()
				b.RunParallel(func(pb *testing.PB) {
					// Each client walks the shared stream from its own
					// offset so clients don't replay identical ops in
					// lockstep.
					i := int(next.Add(1)) * 7919
					var sink int64
					for pb.Next() {
						sink += e.Execute(ops[i%len(ops)])
						i++
					}
					_ = sink
				})
				b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Operation-level micro-benchmarks on the public API
// ---------------------------------------------------------------------------

func benchEngine(b *testing.B, mode casper.Mode, ghostFrac float64) (*casper.Engine, []int64) {
	b.Helper()
	const rows, domain = 100_000, 1_000_000
	keys := casper.UniformKeys(rows, domain, 3)
	e, err := casper.Open(keys, casper.Options{
		Mode:        mode,
		PayloadCols: 7,
		ChunkValues: 32_768,
		GhostFrac:   ghostFrac,
		Partitions:  16,
	})
	if err != nil {
		b.Fatal(err)
	}
	if mode == casper.ModeCasper {
		sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, domain, 4_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Train(sample, 1); err != nil {
			b.Fatal(err)
		}
	}
	return e, keys
}

func BenchmarkPointQuery(b *testing.B) {
	for _, mode := range []casper.Mode{casper.ModeCasper, casper.ModeStateOfArt, casper.ModeNoOrder} {
		b.Run(mode.String(), func(b *testing.B) {
			e, keys := benchEngine(b, mode, 0.001)
			b.ReportAllocs()
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += e.PointQuery(keys[i%len(keys)])
			}
			_ = sink
		})
	}
}

func BenchmarkRangeSum(b *testing.B) {
	for _, mode := range []casper.Mode{casper.ModeCasper, casper.ModeStateOfArt} {
		b.Run(mode.String(), func(b *testing.B) {
			e, _ := benchEngine(b, mode, 0.001)
			b.ReportAllocs()
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				lo := int64(i%50) * 19_000
				sink += e.RangeSum(lo, lo+20_000)
			}
			_ = sink
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode casper.Mode
		gv   float64
	}{
		{"Casper-1pctGV", casper.ModeCasper, 0.01},
		{"Casper-0.01pctGV", casper.ModeCasper, 0.0001},
		{"StateOfArt", casper.ModeStateOfArt, 0},
		{"Sorted", casper.ModeSorted, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			e, _ := benchEngine(b, tc.mode, tc.gv)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Insert(int64(i*7919) % 1_000_000)
			}
		})
	}
}

func BenchmarkUpdateKey(b *testing.B) {
	e, keys := benchEngine(b, casper.ModeCasper, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := keys[i%len(keys)]
		_ = e.UpdateKey(old, old+1)
		keys[i%len(keys)] = old + 1
	}
}

func BenchmarkTrain(b *testing.B) {
	const rows, domain = 100_000, 1_000_000
	keys := casper.UniformKeys(rows, domain, 3)
	sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, domain, 4_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := casper.Open(keys, casper.Options{
			Mode:        casper.ModeCasper,
			PayloadCols: 7,
			ChunkValues: 32_768,
			Partitions:  16,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.Train(sample, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransactionCommit(b *testing.B) {
	e, _ := benchEngine(b, casper.ModeCasper, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := e.Begin()
		if err := tx.Insert(int64(2_000_000 + i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// Example-style doc test exercising the quickstart flow end to end.
func Example() {
	keys := casper.UniformKeys(10_000, 100_000, 42)
	eng, err := casper.Open(keys, casper.Options{
		Mode:        casper.ModeCasper,
		PayloadCols: 3,
		ChunkValues: 4_096,
		Partitions:  8,
	})
	if err != nil {
		panic(err)
	}
	sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, 100_000, 2_000, 1)
	if err != nil {
		panic(err)
	}
	if err := eng.Train(sample, 1); err != nil {
		panic(err)
	}
	eng.Insert(555)
	fmt.Println(eng.PointQuery(555) >= 1)
	// Output: true
}

func BenchmarkAblations(b *testing.B) {
	sc := benchScale()
	var last experiments.Report
	for i := 0; i < b.N; i++ {
		last = experiments.Ablations(sc)
	}
	if dp, equi := last.Data["solver.dp"], last.Data["solver.equi"]; len(dp) == 1 && len(equi) == 1 && dp[0] > 0 {
		b.ReportMetric(equi[0]/dp[0], "equi-cost-vs-optimal")
	}
}

func BenchmarkCompressionSynergy(b *testing.B) {
	sc := benchScale()
	var last experiments.Report
	for i := 0; i < b.N; i++ {
		last = experiments.ExtCompression(sc)
	}
	if v := last.Data["fine"]; len(v) == 1 {
		b.ReportMetric(v[0], "for-ratio-64parts")
	}
}
